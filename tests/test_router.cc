/**
 * @file
 * Tests for SABRE routing and the MIRAGE mirror layer: legality,
 * functional equivalence (via statevector simulation with the reported
 * qubit permutations), and the paper's Fig. 8 depth anchor.
 */

#include <gtest/gtest.h>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "circuit/sim.hh"
#include "support/equivalence.hh"
#include "weyl/catalog.hh"
#include "mirage/pipeline.hh"
#include "router/sabre.hh"

using namespace mirage;
using namespace mirage::router;
using circuit::Circuit;
using circuit::StateVector;
using testsupport::expectRoutedEquivalent;
using topology::CouplingMap;

namespace {

/** Every 2Q gate must act on a coupled pair. */
void
expectLegal(const Circuit &routed, const CouplingMap &coupling)
{
    for (const auto &g : routed.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(coupling.isEdge(g.qubits[0], g.qubits[1]))
                << g.name() << " on (" << g.qubits[0] << "," << g.qubits[1]
                << ")";
        }
    }
}

Circuit
randomCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n, "random");
    for (int i = 0; i < gates; ++i) {
        int a = int(rng.index(uint64_t(n)));
        int b = int(rng.index(uint64_t(n)));
        while (b == a)
            b = int(rng.index(uint64_t(n)));
        switch (rng.index(4)) {
          case 0: c.cx(a, b); break;
          case 1: c.cp(rng.uniform(0.2, 3.0), a, b); break;
          case 2: c.h(a); break;
          default: c.rz(rng.uniform(0, 3.0), a); break;
        }
    }
    return c;
}

} // namespace

TEST(Sabre, RoutesLegallyOnLine)
{
    auto circ = bench::qft(5, true);
    auto line = CouplingMap::line(5);
    PassOptions opts;
    RouteResult res = routePass(circ, line, layout::Layout(5), opts);
    expectLegal(res.routed, line);
    EXPECT_GT(res.swapsAdded, 0);
}

TEST(Sabre, FunctionalEquivalenceOnLine)
{
    auto circ = bench::qft(5, true);
    auto line = CouplingMap::line(5);
    PassOptions opts;
    RouteResult res = routePass(circ, line, layout::Layout(5), opts);
    expectRoutedEquivalent(circ, res.routed, res.initial, res.final, 5);
}

TEST(Sabre, FunctionalEquivalenceRandomCircuits)
{
    auto grid = CouplingMap::grid(3, 3);
    for (uint64_t seed = 0; seed < 6; ++seed) {
        auto circ = randomCircuit(7, 30, 1000 + seed);
        PassOptions opts;
        opts.seed = seed;
        Rng lay_rng(seed * 7 + 1);
        auto init = layout::Layout::random(9, lay_rng);
        RouteResult res = routePass(circ, grid, init, opts);
        expectLegal(res.routed, grid);
        expectRoutedEquivalent(circ, res.routed, res.initial, res.final, 9,
                               seed + 5);
    }
}

TEST(Sabre, NoSwapsWhenAlreadyMapped)
{
    auto circ = bench::ghz(5);
    auto line = CouplingMap::line(5);
    PassOptions opts;
    RouteResult res = routePass(circ, line, layout::Layout(5), opts);
    EXPECT_EQ(res.swapsAdded, 0);
    EXPECT_EQ(res.routed.twoQubitGateCount(), 4);
}

TEST(Mirage, MirrorsAcceptedAndEquivalent)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ =
        circuit::consolidateBlocks(bench::twoLocalFull(4, 1, 3));
    auto line = CouplingMap::line(4);

    PassOptions opts;
    opts.aggression = Aggression::Equal;
    opts.costModel = &cost;
    RouteResult res = routePass(circ, line, layout::Layout(4), opts);
    expectLegal(res.routed, line);
    EXPECT_GT(res.mirrorCandidates, 0);
    expectRoutedEquivalent(circ, res.routed, res.initial, res.final, 4);
}

TEST(Mirage, AllAggressionLevelsStayCorrect)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto grid = CouplingMap::grid(3, 3);
    for (Aggression a : {Aggression::None, Aggression::Lower,
                         Aggression::Equal, Aggression::Always}) {
        for (uint64_t seed = 0; seed < 3; ++seed) {
            auto circ = circuit::consolidateBlocks(
                randomCircuit(7, 24, 500 + seed));
            PassOptions opts;
            opts.aggression = a;
            opts.costModel = &cost;
            opts.seed = seed + 17;
            Rng lay_rng(seed + 3);
            auto init = layout::Layout::random(9, lay_rng);
            RouteResult res = routePass(circ, grid, init, opts);
            expectLegal(res.routed, grid);
            expectRoutedEquivalent(circ, res.routed, res.initial,
                                   res.final, 9, seed);
        }
    }
}

TEST(Mirage, AggressionZeroNeverMirrors)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::qft(5, true));
    PassOptions opts;
    opts.aggression = Aggression::None;
    opts.costModel = &cost;
    RouteResult res =
        routePass(circ, CouplingMap::line(5), layout::Layout(5), opts);
    EXPECT_EQ(res.mirrorsAccepted, 0);
}

TEST(Mirage, AlwaysAggressionMirrorsEverything)
{
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::ghz(4));
    PassOptions opts;
    opts.aggression = Aggression::Always;
    opts.costModel = &cost;
    RouteResult res =
        routePass(circ, CouplingMap::line(4), layout::Layout(4), opts);
    EXPECT_EQ(res.mirrorsAccepted, res.mirrorCandidates);
    EXPECT_GT(res.mirrorsAccepted, 0);
}

TEST(Trials, DeterministicForFixedSeed)
{
    auto circ = bench::qft(6, true);
    auto grid = CouplingMap::grid(3, 3);
    TrialOptions opts;
    opts.layoutTrials = 2;
    opts.swapTrials = 2;
    opts.seed = 777;
    RouteResult a = routeWithTrials(circ, grid, opts);
    RouteResult b = routeWithTrials(circ, grid, opts);
    EXPECT_EQ(a.swapsAdded, b.swapsAdded);
    EXPECT_EQ(a.routed.size(), b.routed.size());
    EXPECT_TRUE(a.initial == b.initial);
}

TEST(Trials, RoutedCircuitsAreUnitarilyEquivalent)
{
    // Full-operator equivalence (up to layout permutations and one
    // global phase) for the multi-trial flow with the paper's mirror
    // mix, on every <= 6-qubit device family we route in the suite.
    auto cost = monodromy::makeRootIswapCostModel(2);
    struct Case { Circuit circ; CouplingMap coupling; };
    std::vector<Case> cases;
    cases.push_back({bench::qft(5, true), CouplingMap::line(5)});
    cases.push_back({bench::qft(6, true), CouplingMap::grid(2, 3)});
    cases.push_back(
        {circuit::consolidateBlocks(bench::twoLocalFull(4, 1, 3)),
         CouplingMap::line(4)});
    cases.push_back({bench::wstate(6), CouplingMap::ring(6)});

    for (size_t i = 0; i < cases.size(); ++i) {
        TrialOptions opts;
        opts.layoutTrials = 4;
        opts.swapTrials = 2;
        opts.seed = 900 + i;
        opts.postSelect = PostSelect::Depth;
        opts.trialAggression = mirageAggressionMix(4);
        opts.pass.costModel = &cost;
        RouteResult res =
            routeWithTrials(cases[i].circ, cases[i].coupling, opts);
        expectLegal(res.routed, cases[i].coupling);
        expectRoutedEquivalent(cases[i].circ, res.routed, res.initial,
                               res.final, cases[i].coupling.numQubits());
    }
}

TEST(Trials, AggressionMixMatchesPaperFractions)
{
    auto mix = mirageAggressionMix(20);
    int counts[4] = {0, 0, 0, 0};
    for (auto a : mix)
        ++counts[int(a)];
    EXPECT_EQ(counts[0], 1); // 5%
    EXPECT_EQ(counts[1], 9); // 45%
    EXPECT_EQ(counts[2], 9); // 45%
    EXPECT_EQ(counts[3], 1); // 5%
}

TEST(Pipeline, Fig8TwoLocalAnchor)
{
    // Paper Fig. 8: TwoLocal(full, 4 qubits) on a line costs 16
    // sqrt(iSWAP) pulses with Qiskit-level-3-style routing but only ~10
    // with MIRAGE.
    auto circ = bench::twoLocalFull(4, 1, 7);
    auto line = CouplingMap::line(4);

    mirage_pass::TranspileOptions base;
    base.flow = mirage_pass::Flow::SabreBaseline;
    base.layoutTrials = 8;
    base.swapTrials = 4;
    base.tryVf2 = false;
    auto qiskit = mirage_pass::transpile(circ, line, base);

    mirage_pass::TranspileOptions mir;
    mir.flow = mirage_pass::Flow::MirageDepth;
    mir.layoutTrials = 8;
    mir.swapTrials = 4;
    mir.tryVf2 = false;
    auto mirage = mirage_pass::transpile(circ, line, mir);

    // Anchors with slack: baseline lands in the mid-teens, MIRAGE close
    // to 10 pulses, and MIRAGE strictly wins.
    EXPECT_GE(qiskit.metrics.depthPulses, 13.0);
    EXPECT_LE(mirage.metrics.depthPulses, 12.0);
    EXPECT_LT(mirage.metrics.depthPulses, qiskit.metrics.depthPulses);
    EXPECT_GT(mirage.mirrorsAccepted, 0);
}

TEST(Pipeline, UnrollThreeQubitCorrect)
{
    // CCX and CSWAP unroll to the right unitaries (checked by
    // simulation against the native 3Q application).
    Circuit c(3);
    c.ccx(0, 1, 2);
    c.cswap(2, 0, 1);
    Circuit unrolled = mirage_pass::unrollThreeQubit(c);
    EXPECT_EQ(unrolled.countKind(circuit::GateKind::CCX), 0);
    EXPECT_EQ(unrolled.countKind(circuit::GateKind::CSWAP), 0);

    Rng rng(4);
    StateVector a(3), b(3);
    a.randomize(rng);
    b = a;
    a.applyCircuit(c);
    b.applyCircuit(unrolled);
    EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-9);
}

TEST(Pipeline, Vf2ShortCircuitsRouting)
{
    auto circ = bench::ghz(5);
    auto grid = CouplingMap::grid(3, 3);
    mirage_pass::TranspileOptions opts;
    auto res = mirage_pass::transpile(circ, grid, opts);
    EXPECT_TRUE(res.usedVf2);
    EXPECT_EQ(res.swapsAdded, 0);
    EXPECT_EQ(res.metrics.swapGates, 0);
}

TEST(Pipeline, MetricsUseMirrorCoordinates)
{
    // A routed mirror block must be costed via its mirrored coordinates:
    // CNOT-class blocks mirrored under Always become iSWAP-class blocks
    // with identical k = 2 cost. (Mirroring also perturbs the layout, so
    // extra routing SWAPs are accounted separately.)
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto circ = circuit::consolidateBlocks(bench::ghz(4));
    PassOptions opts;
    opts.aggression = Aggression::Always;
    opts.costModel = &cost;
    RouteResult res =
        routePass(circ, CouplingMap::line(4), layout::Layout(4), opts);

    int mirrored_blocks = 0;
    for (const auto &g : res.routed.gates()) {
        if (g.mirrored) {
            ++mirrored_blocks;
            ASSERT_TRUE(g.coords.has_value());
            EXPECT_TRUE(g.coords->closeTo(weyl::coordISWAP(), 1e-7));
            EXPECT_NEAR(cost.costOf(*g.coords), 1.0, 1e-9);
        }
    }
    EXPECT_EQ(mirrored_blocks, 3);
    auto metrics = mirage_pass::computeMetrics(res.routed, cost);
    EXPECT_NEAR(metrics.totalCost,
                3.0 * 1.0 + res.swapsAdded * cost.swapCost(), 1e-9);
}
