/**
 * @file
 * Tests for the polytope kernel and quadrature.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/polytope.hh"
#include "geometry/quadrature.hh"

using namespace mirage::geometry;

namespace {

constexpr double kPi = 3.14159265358979323846;

Polytope
unitCube()
{
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, 1},  {{-1, 0, 0}, 0}, {{0, 1, 0}, 1},
        {{0, -1, 0}, 0}, {{0, 0, 1}, 1},  {{0, 0, -1}, 0},
    };
    return Polytope(std::move(hs));
}

} // namespace

TEST(Polytope, CubeVertices)
{
    auto verts = unitCube().vertices();
    EXPECT_EQ(verts.size(), 8u);
}

TEST(Polytope, CubeVolume)
{
    EXPECT_NEAR(unitCube().volume(), 1.0, 1e-9);
}

TEST(Polytope, CubeContains)
{
    Polytope cube = unitCube();
    EXPECT_TRUE(cube.contains({0.5, 0.5, 0.5}));
    EXPECT_TRUE(cube.contains({0, 0, 0}));
    EXPECT_FALSE(cube.contains({1.2, 0.5, 0.5}));
    EXPECT_FALSE(cube.contains({0.5, -0.1, 0.5}));
}

TEST(Polytope, IntersectionVolume)
{
    // Cube shifted by 0.5 in x: intersection volume 0.5.
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, 1.5}, {{-1, 0, 0}, -0.5}, {{0, 1, 0}, 1},
        {{0, -1, 0}, 0},  {{0, 0, 1}, 1},     {{0, 0, -1}, 0},
    };
    Polytope shifted(std::move(hs));
    EXPECT_NEAR(unitCube().intersect(shifted).volume(), 0.5, 1e-9);
}

TEST(Polytope, EmptyIntersection)
{
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, 3}, {{-1, 0, 0}, -2}, // 2 <= x <= 3, disjoint from cube
        {{0, 1, 0}, 1}, {{0, -1, 0}, 0},  {{0, 0, 1}, 1}, {{0, 0, -1}, 0},
    };
    Polytope far(std::move(hs));
    EXPECT_NEAR(unitCube().intersect(far).volume(), 0.0, 1e-12);
    EXPECT_TRUE(unitCube().intersect(far).tetrahedralize().empty());
}

TEST(Polytope, RedundancyRemoval)
{
    Polytope cube = unitCube();
    cube.addHalfspace({{1, 1, 1}, 10}); // far away, redundant
    size_t before = cube.halfspaces().size();
    cube.removeRedundancy();
    EXPECT_LT(cube.halfspaces().size(), before);
    EXPECT_NEAR(cube.volume(), 1.0, 1e-9);
}

TEST(Polytope, AffineImageVolume)
{
    // Rotation-ish shear with |det| = 1 preserves volume; scaling by 2 in
    // x doubles it.
    Polytope cube = unitCube();
    Polytope scaled = cube.affineImage({2, 0, 0, 0, 1, 0, 0, 0, 1},
                                       {1, 2, 3});
    EXPECT_NEAR(scaled.volume(), 2.0, 1e-9);
    EXPECT_TRUE(scaled.contains({2.5, 2.5, 3.5}));
    EXPECT_FALSE(scaled.contains({0.5, 2.5, 3.5}));
}

TEST(Polytope, WeylAlcoveVolume)
{
    // Tetrahedron with vertices O, (pi/2,0,0), (pi/4,pi/4,0),
    // (pi/4,pi/4,pi/4): volume = pi^3/192.
    double expect = kPi * kPi * kPi / 192.0;
    EXPECT_NEAR(weylAlcove().volume(), expect, 1e-9);
}

TEST(Quadrature, ConstantOverCube)
{
    double integral = integratePolytope(
        unitCube(), [](const Vec3 &) { return 3.0; }, 2);
    EXPECT_NEAR(integral, 3.0, 1e-9);
}

TEST(Quadrature, PolynomialOverCube)
{
    // Integral of x*y over the unit cube is 1/4.
    double integral = integratePolytope(
        unitCube(), [](const Vec3 &p) { return p.x * p.y; }, 2);
    EXPECT_NEAR(integral, 0.25, 1e-9);
}

TEST(Quadrature, SmoothNonPolynomial)
{
    // Integral of sin(x) sin(y) sin(z) over [0,1]^3 = (1-cos 1)^3.
    double expect = std::pow(1.0 - std::cos(1.0), 3.0);
    double integral = integratePolytope(
        unitCube(),
        [](const Vec3 &p) {
            return std::sin(p.x) * std::sin(p.y) * std::sin(p.z);
        },
        3);
    EXPECT_NEAR(integral, expect, 1e-6);
}

TEST(Quadrature, UnionInclusionExclusion)
{
    // Two overlapping boxes: [0,1]^3 and [0.5,1.5]x[0,1]x[0,1].
    std::vector<Halfspace> hs = {
        {{1, 0, 0}, 1.5}, {{-1, 0, 0}, -0.5}, {{0, 1, 0}, 1},
        {{0, -1, 0}, 0},  {{0, 0, 1}, 1},     {{0, 0, -1}, 0},
    };
    Polytope shifted(std::move(hs));
    std::vector<Halfspace> big = {
        {{1, 0, 0}, 10},  {{-1, 0, 0}, 10}, {{0, 1, 0}, 10},
        {{0, -1, 0}, 10}, {{0, 0, 1}, 10},  {{0, 0, -1}, 10},
    };
    Polytope domain(std::move(big));
    double vol = integrateUnion({unitCube(), shifted}, domain,
                                [](const Vec3 &) { return 1.0; }, 1);
    EXPECT_NEAR(vol, 1.5, 1e-9);
}

TEST(Tetra, VolumeAndSplitConsistency)
{
    Tetra t{{Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}};
    EXPECT_NEAR(t.volume(), 1.0 / 6.0, 1e-12);
    // Subdivided integral of a linear function equals the exact value.
    double viaQuad = integrateTetra(
        t, [](const Vec3 &p) { return 1.0 + p.x + 2.0 * p.y; }, 3);
    // Exact: vol * (1 + mean(x) + 2 mean(y)) with centroid means 1/4.
    double expect = (1.0 / 6.0) * (1.0 + 0.25 + 0.5);
    EXPECT_NEAR(viaQuad, expect, 1e-12);
}
