/**
 * @file
 * Figure 12 reproduction: MIRAGE vs Qiskit-SABRE on the two production
 * topologies -- the 57Q heavy-hex lattice (a/b) and the 6x6 square
 * lattice (c/d) -- tracking critical-path depth, total pulse cost, and
 * SWAP count per circuit, with average and size-weighted reductions.
 *
 * Paper headline numbers: heavy-hex -31.19% depth / -16.97% gates /
 * -56.19% SWAPs; square lattice -29.58% depth / -10.25% gates /
 * -59.86% SWAPs.
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweep runs via `mirage sweep --experiment fig12`, which additionally
 * emits the machine-readable JSON artifact. MIRAGE_BENCH_* env knobs
 * keep working (see cli::knobsFromEnv).
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto artifact =
        runExperiment(*findExperiment("fig12"), knobsFromEnv());
    std::fputs(renderMarkdown(artifact).c_str(), stdout);
    return 0;
}
