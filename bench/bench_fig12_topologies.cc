/**
 * @file
 * Figure 12 reproduction: MIRAGE vs Qiskit-SABRE on the two production
 * topologies -- the 57Q heavy-hex lattice (a/b) and the 6x6 square
 * lattice (c/d) -- tracking critical-path depth, total pulse cost, and
 * SWAP count per circuit, with average and size-weighted reductions.
 *
 * Paper headline numbers: heavy-hex -31.19% depth / -16.97% gates /
 * -56.19% SWAPs; square lattice -29.58% depth / -10.25% gates /
 * -59.86% SWAPs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace mirage;
using namespace mirage::benchutil;

namespace {

void
runTopology(const topology::CouplingMap &topo)
{
    const char *names[] = {
        "qec9xz_n17",   "seca_n11",         "knn_n25",
        "swap_test_n25", "qram_n20",        "qft_n18",
        "qftentangled_n16", "ae_n16",       "bigadder_n18",
        "qpeexact_n16", "multiplier_n15",   "portfolioqaoa_n16",
        "sat_n11",
    };

    std::printf("---- topology %s ----\n", topo.name().c_str());
    std::printf("%-20s %9s %9s %7s | %9s %9s %7s | %7s %7s %8s\n",
                "circuit", "Q.depth", "M.depth", "d%", "Q.pulse",
                "M.pulse", "g%", "Q.swap", "M.swap", "mirror%");

    double sum_d = 0, sum_g = 0, sum_s = 0;
    double wsum_d = 0, wsum_g = 0, wsum_s = 0;
    double wtot_d = 0, wtot_g = 0, wtot_s = 0;
    int count = 0;
    for (const char *name : names) {
        auto q = runSweep(name, topo, mirage_pass::Flow::SabreBaseline);
        auto m = runSweep(name, topo, mirage_pass::Flow::MirageDepth);
        double dp = pct(q.depth, m.depth);
        double gp = pct(q.totalPulses, m.totalPulses);
        double sp = pct(q.swaps, m.swaps);
        std::printf("%-20s %9.1f %9.1f %6.1f%% | %9.0f %9.0f %6.1f%% | "
                    "%7.1f %7.1f %7.1f%%\n",
                    name, q.depth, m.depth, dp, q.totalPulses,
                    m.totalPulses, gp, q.swaps, m.swaps,
                    100.0 * m.mirrorRate);
        sum_d += dp;
        sum_g += gp;
        sum_s += sp;
        wsum_d += dp * q.depth;
        wtot_d += q.depth;
        wsum_g += gp * q.totalPulses;
        wtot_g += q.totalPulses;
        wsum_s += sp * q.swaps;
        wtot_s += q.swaps;
        ++count;
    }
    std::printf("average reductions: depth %.2f%%, total pulses %.2f%%, "
                "swaps %.2f%%\n",
                sum_d / count, sum_g / count, sum_s / count);
    std::printf("weighted reductions: depth %.2f%%, total pulses %.2f%%, "
                "swaps %.2f%%\n\n",
                wsum_d / wtot_d, wsum_g / wtot_g, wsum_s / wtot_s);
}

} // namespace

int
main()
{
    std::printf("== Figure 12: MIRAGE vs Qiskit-SABRE on production "
                "topologies ==\n\n");
    runTopology(topology::CouplingMap::heavyHex57());
    runTopology(topology::CouplingMap::grid(6, 6));
    std::printf("paper: heavy-hex -31.19%% depth, -16.97%% gates, "
                "-56.19%% swaps;\n       square  -29.58%% depth, "
                "-10.25%% gates, -59.86%% swaps.\n");
    return 0;
}
