/**
 * @file
 * Figure 8 reproduction: TwoLocal (full entanglement, 4 qubits) on a
 * 4-qubit line. Qiskit-level-3-style routing needs 16 sqrt(iSWAP) pulses
 * with 3 SWAPs; MIRAGE absorbs the SWAPs into mirrors and lands at 10
 * pulses with none.
 */

#include <cstdio>

#include "bench_circuits/generators.hh"
#include "bench_util.hh"

using namespace mirage;
using namespace mirage::benchutil;

int
main()
{
    auto circ = bench::twoLocalFull(4, 1, 7);
    auto line = topology::CouplingMap::line(4);

    auto base_opts = benchOptions(mirage_pass::Flow::SabreBaseline, 1);
    base_opts.layoutTrials = 8;
    auto mir_opts = benchOptions(mirage_pass::Flow::MirageDepth, 1);
    mir_opts.layoutTrials = 8;

    auto base = mirage_pass::transpile(circ, line, base_opts);
    auto mir = mirage_pass::transpile(circ, line, mir_opts);

    std::printf("== Figure 8: TwoLocal(full, 4q) on a 4-qubit line ==\n");
    std::printf("%-18s %14s %8s %10s %12s\n", "flow", "pulses(sqiSW)",
                "swaps", "mirrors", "depth(iSWAP)");
    std::printf("%-18s %14.1f %8d %10d %12.2f\n", "Qiskit-baseline",
                base.metrics.depthPulses, base.metrics.swapGates,
                base.mirrorsAccepted, base.metrics.depth);
    std::printf("%-18s %14.1f %8d %10d %12.2f\n", "MIRAGE",
                mir.metrics.depthPulses, mir.metrics.swapGates,
                mir.mirrorsAccepted, mir.metrics.depth);
    std::printf("\npaper: 16 pulses / 3 SWAPs vs 10 pulses / 0 SWAPs.\n");

    std::printf("\nMIRAGE output gates:\n");
    for (const auto &g : mir.routed.gates()) {
        if (!g.isTwoQubit())
            continue;
        std::printf("  %-5s (%d,%d)%s\n", g.name().c_str(), g.qubits[0],
                    g.qubits[1], g.mirrored ? "  [mirror]" : "");
    }
    return 0;
}
