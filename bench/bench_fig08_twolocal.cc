/**
 * @file
 * Figure 8 reproduction: TwoLocal (full entanglement, 4 qubits) on a
 * 4-qubit line. Qiskit-level-3-style routing needs 16 sqrt(iSWAP) pulses
 * with 3 SWAPs; MIRAGE absorbs the SWAPs into mirrors and lands at 10
 * pulses with none.
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweep runs via `mirage sweep --experiment fig8`, which additionally
 * emits the machine-readable JSON artifact.
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto artifact =
        runExperiment(*findExperiment("fig8"), knobsFromEnv());
    std::fputs(renderMarkdown(artifact).c_str(), stdout);
    return 0;
}
