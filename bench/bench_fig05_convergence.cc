/**
 * @file
 * Figure 5 reproduction: Monte Carlo convergence of the Haar score for
 * the 4th root of iSWAP under the four strategies (exact / approximate,
 * each with and without mirrors), against the exact polytope-integration
 * reference lines.
 *
 * MIRAGE_BENCH_MC_ITERS overrides the iteration count (default 300; the
 * paper's figure uses 1000).
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "monodromy/scores.hh"

using namespace mirage;
using namespace mirage::monodromy;

int
main()
{
    const char *v = std::getenv("MIRAGE_BENCH_MC_ITERS");
    const int iters = v ? std::atoi(v) : 300;

    const CoverageSet &cs = coverageForRootIswap(4);

    HaarScore exact_plain = haarScoreExact(cs, false);
    HaarScore exact_mirror = haarScoreExact(cs, true);
    std::printf("== Figure 5: Haar-score convergence, 4th-root iSWAP "
                "(%d iterations) ==\n", iters);
    std::printf("exact reference lines: plain %.4f, mirrors %.4f\n\n",
                exact_plain.score, exact_mirror.score);

    struct Strategy
    {
        const char *name;
        bool mirrors;
        bool approximate;
    };
    const Strategy strategies[4] = {
        {"Exact", false, false},
        {"Approximate", false, true},
        {"Exact + Mirrors", true, false},
        {"Approximate + Mirrors", true, true},
    };

    // Log-spaced checkpoints like the paper's x-axis.
    std::vector<int> checkpoints;
    for (int c = 1; c <= iters; c *= 2)
        checkpoints.push_back(c);
    if (checkpoints.back() != iters)
        checkpoints.push_back(iters);

    std::map<const char *, std::vector<double>> curves;
    for (const auto &s : strategies) {
        MonteCarloOptions opts;
        opts.iterations = iters;
        opts.mirrors = s.mirrors;
        opts.approximate = s.approximate;
        std::vector<double> curve(checkpoints.size(), 0.0);
        opts.progress = [&](int it, double running) {
            for (size_t i = 0; i < checkpoints.size(); ++i) {
                if (checkpoints[i] == it)
                    curve[i] = running;
            }
        };
        HaarScore final_score = haarScoreMonteCarlo(cs, opts);
        curve.back() = final_score.score;
        curves[s.name] = curve;
        std::printf("%-22s final score %.4f (fidelity %.4f)\n", s.name,
                    final_score.score, final_score.fidelity);
    }

    std::printf("\n%10s", "iteration");
    for (const auto &s : strategies)
        std::printf(" %21s", s.name);
    std::printf("\n");
    for (size_t i = 0; i < checkpoints.size(); ++i) {
        std::printf("%10d", checkpoints[i]);
        for (const auto &s : strategies)
            std::printf(" %21.4f", curves[s.name][i]);
        std::printf("\n");
    }
    std::printf("\npaper: exact ~0.96, exact+mirrors ~0.90, "
                "approx+mirrors < 0.85 (Fig. 5).\n");
    return 0;
}
