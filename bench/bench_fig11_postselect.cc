/**
 * @file
 * Figure 11 reproduction: post-selection metric comparison. Routing the
 * 13-circuit suite with (a) stock SWAP-count selection (Qiskit), (b)
 * MIRAGE post-selected on SWAPs, (c) MIRAGE post-selected on estimated
 * depth. The paper reports -24.1% average depth for (b) and a further
 * -7.5% for (c), totalling -29.5%, with total gates mostly unchanged.
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweep runs via `mirage sweep --experiment fig11`, which additionally
 * emits the machine-readable JSON artifact. MIRAGE_BENCH_* env knobs
 * keep working (see cli::knobsFromEnv).
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto artifact =
        runExperiment(*findExperiment("fig11"), knobsFromEnv());
    std::fputs(renderMarkdown(artifact).c_str(), stdout);
    return 0;
}
