/**
 * @file
 * Figure 11 reproduction: post-selection metric comparison. Routing the
 * 13-circuit suite with (a) stock SWAP-count selection (Qiskit), (b)
 * MIRAGE post-selected on SWAPs, (c) MIRAGE post-selected on estimated
 * depth. The paper reports -24.1% average depth for (b) and a further
 * -7.5% for (c), totalling -29.5%, with total gates mostly unchanged.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mirage;
using namespace mirage::benchutil;

int
main()
{
    auto grid = topology::CouplingMap::grid(6, 6);
    const char *names[] = {
        "qec9xz_n17",   "seca_n11",         "swap_test_n25",
        "knn_n25",      "qram_n20",         "qft_n18",
        "qftentangled_n16", "ae_n16",       "bigadder_n18",
        "qpeexact_n16", "multiplier_n15",   "portfolioqaoa_n16",
        "sat_n11",
    };

    std::printf("== Figure 11: post-selection metric (average depth, "
                "iSWAP units, 6x6 grid) ==\n");
    std::printf("%-20s %10s %14s %14s %10s %10s\n", "circuit", "qiskit",
                "mirage-swaps", "mirage-depth", "dS(%)", "dD(%)");

    double sum_swap_red = 0, sum_depth_red = 0, sum_gate_ratio = 0;
    int count = 0;
    for (const char *name : names) {
        auto qiskit =
            runSweep(name, grid, mirage_pass::Flow::SabreBaseline);
        auto mswaps =
            runSweep(name, grid, mirage_pass::Flow::MirageSwaps);
        auto mdepth =
            runSweep(name, grid, mirage_pass::Flow::MirageDepth);
        double ds = pct(qiskit.depth, mswaps.depth);
        double dd = pct(qiskit.depth, mdepth.depth);
        std::printf("%-20s %10.1f %14.1f %14.1f %9.1f%% %9.1f%%\n", name,
                    qiskit.depth, mswaps.depth, mdepth.depth, ds, dd);
        sum_swap_red += ds;
        sum_depth_red += dd;
        sum_gate_ratio += pct(qiskit.totalPulses, mdepth.totalPulses);
        ++count;
    }
    std::printf("\naverage depth reduction: mirage-swaps %.1f%%, "
                "mirage-depth %.1f%% (extra %.1f%%)\n",
                sum_swap_red / count, sum_depth_red / count,
                (sum_depth_red - sum_swap_red) / count);
    std::printf("average total-pulse change under mirage-depth: %.1f%%\n",
                sum_gate_ratio / count);
    std::printf("paper: -24.1%% (swaps) -> -29.5%% (depth), gates "
                "~unchanged.\n");
    return 0;
}
