/**
 * @file
 * Figure 10 reproduction: fixed aggression levels vs the Qiskit baseline
 * on wstate_n27, bigadder_n18, qft_n18, bv_n30. No single aggression
 * wins everywhere, motivating the 5/45/45/5 mixed distribution.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mirage;
using namespace mirage::benchutil;

int
main()
{
    auto grid = topology::CouplingMap::grid(6, 6);
    const char *names[4] = {"wstate_n27", "bigadder_n18", "qft_n18",
                            "bv_n30"};

    std::printf("== Figure 10: aggression sweep (average depth, iSWAP "
                "units, 6x6 grid) ==\n");
    std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "circuit", "qiskit",
                "a0", "a1", "a2", "a3", "mix");
    for (const char *name : names) {
        double qiskit =
            runSweep(name, grid, mirage_pass::Flow::SabreBaseline).depth;
        std::printf("%-16s %8.1f", name, qiskit);
        for (int a = 0; a <= 3; ++a) {
            double depth =
                runSweep(name, grid, mirage_pass::Flow::MirageDepth, a)
                    .depth;
            std::printf(" %8.1f", depth);
        }
        double mixed =
            runSweep(name, grid, mirage_pass::Flow::MirageDepth).depth;
        std::printf(" %8.1f\n", mixed);
    }
    std::printf("\npaper: no single aggression level is universally "
                "optimal (Fig. 10);\nthe mixed 5/45/45/5 distribution is "
                "competitive everywhere.\n");
    return 0;
}
