/**
 * @file
 * Figure 10 reproduction: fixed aggression levels vs the Qiskit baseline
 * on wstate_n27, bigadder_n18, qft_n18, bv_n30. No single aggression
 * wins everywhere, motivating the 5/45/45/5 mixed distribution.
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweep runs via `mirage sweep --experiment fig10`, which additionally
 * emits the machine-readable JSON artifact. MIRAGE_BENCH_* env knobs
 * keep working (see cli::knobsFromEnv).
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto artifact =
        runExperiment(*findExperiment("fig10"), knobsFromEnv());
    std::fputs(renderMarkdown(artifact).c_str(), stdout);
    return 0;
}
