/**
 * @file
 * Tables I and II reproduction: Haar scores and average fidelities for
 * the iSWAP roots, with and without mirrors -- exact (polytope
 * integration, Table I) and with approximate decomposition accepted when
 * it improves total fidelity (Algorithm 1 Monte Carlo, Table II).
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweeps run via `mirage sweep --experiment table1|table2`, which
 * additionally emit the machine-readable JSON artifacts.
 * MIRAGE_BENCH_MC_ITERS overrides the Monte Carlo iteration count
 * (default 300; the paper uses 1000).
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto knobs = knobsFromEnv();
    for (const char *name : {"table1", "table2"}) {
        auto artifact = runExperiment(*findExperiment(name), knobs);
        std::fputs(renderMarkdown(artifact).c_str(), stdout);
        std::fputs("\n", stdout);
    }
    return 0;
}
