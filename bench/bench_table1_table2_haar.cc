/**
 * @file
 * Tables I and II reproduction: Haar scores and average fidelities for
 * the iSWAP roots, with and without mirrors -- exact (polytope
 * integration, Table I) and with approximate decomposition accepted when
 * it improves total fidelity (Algorithm 1 Monte Carlo, Table II).
 *
 * MIRAGE_BENCH_MC_ITERS overrides the Monte Carlo iteration count
 * (default 300; the paper uses 1000).
 */

#include <cstdio>
#include <cstdlib>

#include "monodromy/scores.hh"

using namespace mirage;
using namespace mirage::monodromy;

namespace {

int
mcIterations()
{
    const char *v = std::getenv("MIRAGE_BENCH_MC_ITERS");
    return v ? std::atoi(v) : 300;
}

} // namespace

int
main()
{
    std::printf("== Table I: exact decomposition (polytope integration) "
                "==\n");
    std::printf("%-12s %10s %10s %12s %14s\n", "basis", "haar", "fidelity",
                "mirror haar", "mirror fid");
    for (int n : {2, 3, 4}) {
        const CoverageSet &cs = coverageForRootIswap(n);
        HaarScore plain = haarScoreExact(cs, false);
        HaarScore mirror = haarScoreExact(cs, true);
        std::printf("%d-rt iSWAP %11.4f %10.4f %12.4f %14.4f\n", n,
                    plain.score, plain.fidelity, mirror.score,
                    mirror.fidelity);
    }
    std::printf("paper Table I: 1.105/0.9890 1.029/0.9897 | "
                "0.9907/0.9901 0.9545/0.9904 | 0.9599/0.9904 "
                "0.8997/0.9910\n\n");

    const int iters = mcIterations();
    std::printf("== Table II: approximate decomposition (Algorithm 1, "
                "%d MC iterations) ==\n", iters);
    std::printf("%-12s %10s %10s %12s %14s\n", "basis", "haar", "fidelity",
                "mirror haar", "mirror fid");
    for (int n : {2, 3, 4}) {
        const CoverageSet &cs = coverageForRootIswap(n);
        MonteCarloOptions opts;
        opts.iterations = iters;
        opts.approximate = true;
        opts.mirrors = false;
        HaarScore plain = haarScoreMonteCarlo(cs, opts);
        opts.mirrors = true;
        opts.seed ^= 0x77;
        HaarScore mirror = haarScoreMonteCarlo(cs, opts);
        std::printf("%d-rt iSWAP %11.4f %10.4f %12.4f %14.4f\n", n,
                    plain.score, plain.fidelity, mirror.score,
                    mirror.fidelity);
    }
    std::printf("paper Table II: 1.031/0.9895 0.9950/0.9899 | "
                "0.9433/0.9904 0.8900/0.9908 | 0.9165/0.9906 "
                "0.8453/0.9913\n");
    return 0;
}
