/**
 * @file
 * Figure 9 reproduction: local minima in greedy routing. The same
 * 4-qubit input (a subset of the Fig. 8 ansatz, reordered so the first
 * gate needs no SWAP) is routed from the same initial layout many times;
 * different greedy tie-breaks land in different minima -- some trials
 * get stuck near 7 pulses while others find the 6-pulse optimum, which
 * is exactly why MIRAGE runs independent trials with mixed aggression
 * and post-selects on depth.
 */

#include <cstdio>
#include <map>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "monodromy/cost_model.hh"
#include "mirage/depth_metric.hh"
#include "router/sabre.hh"

using namespace mirage;
using namespace mirage::router;

int
main()
{
    // The Fig. 9 input: the fully entangling 4-qubit ansatz, starting
    // from the identity layout so the first gate needs no SWAP.
    auto circ = bench::twoLocalFull(4, 1, 7);
    auto line = topology::CouplingMap::line(4);
    auto cost = monodromy::makeRootIswapCostModel(2);
    auto consolidated = circuit::consolidateBlocks(circ);

    std::printf("== Figure 9: greedy local minima across routing trials "
                "==\n");
    std::map<int, int> histogram; // pulses -> count
    double best = 1e30, worst = 0;
    const int trials = 64;
    for (int t = 0; t < trials; ++t) {
        PassOptions opts;
        opts.costModel = &cost;
        switch (t % 4) {
          case 0: opts.aggression = Aggression::Lower; break;
          case 1: opts.aggression = Aggression::Equal; break;
          case 2: opts.aggression = Aggression::Always; break;
          default: opts.aggression = Aggression::None; break;
        }
        opts.seed = 101 + 7 * uint64_t(t);
        auto res = routePass(consolidated, line, layout::Layout(4), opts);
        auto m = mirage_pass::computeMetrics(res.routed, cost);
        ++histogram[int(m.depthPulses + 0.5)];
        best = std::min(best, m.depthPulses);
        worst = std::max(worst, m.depthPulses);
    }

    std::printf("%-14s %s\n", "depth(pulses)", "trials");
    for (auto [pulses, count] : histogram) {
        std::printf("%-14d %d  ", pulses, count);
        for (int i = 0; i < count; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("\nbest %.0f vs worst %.0f pulses from the same layout "
                "(paper: 6 vs 7+ on its subset).\n", best, worst);
    std::printf("Post-selection across trials keeps the %.0f-pulse "
                "route.\n", best);
    return 0;
}
