/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: environment
 * knobs for trial counts, geometric means over seeds, and the standard
 * baseline-vs-MIRAGE sweep runner.
 *
 * Knobs (all optional):
 *   MIRAGE_BENCH_SEEDS        independent instances averaged (default 3)
 *   MIRAGE_BENCH_TRIALS       SABRE/MIRAGE layout trials     (default 12)
 *   MIRAGE_BENCH_SWAP_TRIALS  routing repeats per layout     (default 4)
 *   MIRAGE_BENCH_FWD_BWD      layout refinement rounds       (default 2)
 */

#ifndef MIRAGE_BENCH_BENCH_UTIL_HH
#define MIRAGE_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_circuits/generators.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

namespace mirage::benchutil {

inline int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atoi(v) : fallback;
}

inline int
benchSeeds()
{
    return envInt("MIRAGE_BENCH_SEEDS", 3);
}

/** Transpile options matching the bench defaults. */
inline mirage_pass::TranspileOptions
benchOptions(mirage_pass::Flow flow, uint64_t seed)
{
    mirage_pass::TranspileOptions o;
    o.flow = flow;
    o.layoutTrials = envInt("MIRAGE_BENCH_TRIALS", 12);
    o.swapTrials = envInt("MIRAGE_BENCH_SWAP_TRIALS", 4);
    o.forwardBackwardPasses = envInt("MIRAGE_BENCH_FWD_BWD", 2);
    // The paper's suite is selected to need routing; skip the VF2
    // short-circuit so linear-interaction circuits are routed too.
    o.tryVf2 = false;
    o.seed = seed;
    return o;
}

/** Aggregated transpile statistics over several seeds (geometric mean for
 * depth as in the paper, arithmetic for counters). */
struct SweepStats
{
    double depth = 0;      ///< geomean critical-path duration
    double depthPulses = 0;
    double totalPulses = 0;
    double swaps = 0;
    double mirrorRate = 0;
};

inline SweepStats
runSweep(const std::string &bench_name,
         const topology::CouplingMap &coupling, mirage_pass::Flow flow,
         int fixed_aggression = -1)
{
    const int seeds = benchSeeds();
    SweepStats s;
    double log_depth = 0;
    for (int i = 0; i < seeds; ++i) {
        auto circ = bench::benchmarkByName(bench_name).make();
        auto opts = benchOptions(flow, 0x9000 + 131 * uint64_t(i));
        opts.fixedAggression = fixed_aggression;
        auto res = mirage_pass::transpile(circ, coupling, opts);
        log_depth += std::log(std::max(res.metrics.depth, 1e-9));
        s.depthPulses += res.metrics.depthPulses;
        s.totalPulses += res.metrics.totalPulses;
        s.swaps += res.swapsAdded;
        s.mirrorRate += res.mirrorAcceptRate();
    }
    s.depth = std::exp(log_depth / seeds);
    s.depthPulses /= seeds;
    s.totalPulses /= seeds;
    s.swaps /= seeds;
    s.mirrorRate /= seeds;
    return s;
}

inline double
pct(double base, double now)
{
    return base > 0 ? 100.0 * (base - now) / base : 0.0;
}

} // namespace mirage::benchutil

#endif // MIRAGE_BENCH_BENCH_UTIL_HH
