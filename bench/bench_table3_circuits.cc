/**
 * @file
 * Table III reproduction: the benchmark suite inventory with MEASURED
 * sqrt(iSWAP) pulse counts -- every circuit routed through the MIRAGE
 * pipeline and lowered over one shared equivalence library, the
 * measured pulse count printed next to the polytope estimate.
 *
 * Thin wrapper over the shared experiment registry (src/cli): the same
 * sweep runs via `mirage sweep --experiment table3`, which additionally
 * emits the machine-readable JSON artifact. With MIRAGE_BENCH_TIMING=1
 * (default) the suite timing experiment (`fig13`: serial-vs-parallel
 * transpile, cold-vs-warm lowering) runs afterwards. MIRAGE_BENCH_*
 * env knobs keep working (see cli::knobsFromEnv).
 */

#include <cstdio>

#include "cli/experiments.hh"

int
main()
{
    using namespace mirage::cli;
    auto knobs = knobsFromEnv();

    auto table3 = runExperiment(*findExperiment("table3"), knobs);
    std::fputs(renderMarkdown(table3).c_str(), stdout);

    if (envInt("MIRAGE_BENCH_TIMING", 1)) {
        auto fig13 = runExperiment(*findExperiment("fig13"), knobs);
        std::fputs("\n", stdout);
        std::fputs(renderMarkdown(fig13).c_str(), stdout);
    }
    return 0;
}
