/**
 * @file
 * Table III reproduction: the benchmark suite inventory. Prints each
 * circuit's qubit count and two-qubit gate counts (native and
 * CX-decomposed) next to the count the paper reports, then times the
 * whole suite through the MIRAGE pipeline twice -- a serial loop
 * (threads=1) versus transpileMany on all hardware threads -- and
 * reports the speedup. The two runs produce bit-identical circuits
 * (counter-based RNG streams), so the speedup is free.
 *
 * With MIRAGE_BENCH_LOWER=1 (default) the suite then runs the
 * lowerToBasis stage over one shared equivalence library and reports
 * MEASURED sqrt(iSWAP) pulse counts next to the polytope estimates --
 * Table III with measurements instead of projections -- plus the
 * cold-vs-warm library split (first pass fits, second pass is pure
 * cache hits).
 *
 * Env knobs: MIRAGE_BENCH_TRIALS / MIRAGE_BENCH_SWAP_TRIALS (trial grid,
 * defaults 8/2 here), MIRAGE_BENCH_TIMING=0 to skip the timing pass,
 * MIRAGE_BENCH_LOWER=0 to skip the lowering pass.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_circuits/generators.hh"
#include "bench_util.hh"
#include "common/exec.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Bit-exact transpile-result comparison (gates, layouts, metrics). */
bool
identicalResults(const mirage_pass::TranspileResult &a,
                 const mirage_pass::TranspileResult &b)
{
    return circuit::Circuit::bitIdentical(a.routed, b.routed) &&
           a.initial == b.initial && a.final == b.final &&
           a.metrics.depth == b.metrics.depth &&
           a.metrics.totalCost == b.metrics.totalCost;
}

void
timeSuite()
{
    // Every Table III circuit fits an 8x8 grid (max 18 qubits).
    const auto grid = topology::CouplingMap::grid(8, 8);

    std::vector<circuit::Circuit> circuits;
    for (const auto &b : bench::paperBenchmarks())
        circuits.push_back(b.make());

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.layoutTrials = benchutil::envInt("MIRAGE_BENCH_TRIALS", 8);
    opts.swapTrials = benchutil::envInt("MIRAGE_BENCH_SWAP_TRIALS", 2);
    opts.tryVf2 = false;
    opts.seed = 0xB3;

    // Warm the process-wide coverage/coordinate caches outside the
    // timed region (both runs then see the same warm state).
    mirage_pass::transpile(circuits.front(), grid, opts);

    opts.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    auto serial = mirage_pass::transpileMany(circuits, grid, opts);
    double serial_ms = millisSince(t0);

    opts.threads = 0; // all hardware threads
    t0 = std::chrono::steady_clock::now();
    auto parallel = mirage_pass::transpileMany(circuits, grid, opts);
    double parallel_ms = millisSince(t0);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = identicalResults(serial[i], parallel[i]);

    std::printf("\n== Suite transpile timing (%d layout x %d swap trials, "
                "%zu circuits) ==\n",
                opts.layoutTrials, opts.swapTrials, circuits.size());
    std::printf("serial   (threads=1): %9.1f ms\n", serial_ms);
    std::printf("parallel (threads=%d): %9.1f ms\n",
                exec::defaultThreads(), parallel_ms);
    std::printf("speedup: %.2fx; outputs bit-identical: %s\n",
                parallel_ms > 0 ? serial_ms / parallel_ms : 0.0,
                identical ? "yes" : "NO (BUG)");
}

void
lowerSuite()
{
    // Table III with MEASURED pulse counts: lower every routed circuit
    // over ONE shared equivalence library (the serving shape). The
    // second pass over the warm library is pure cache hits -- the gap
    // is the Fig. 13-style caching win for the lowering stage.
    const auto grid = topology::CouplingMap::grid(8, 8);

    std::vector<circuit::Circuit> circuits;
    for (const auto &b : bench::paperBenchmarks())
        circuits.push_back(b.make());

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.layoutTrials = benchutil::envInt("MIRAGE_BENCH_TRIALS", 8);
    opts.swapTrials = benchutil::envInt("MIRAGE_BENCH_SWAP_TRIALS", 2);
    opts.tryVf2 = false;
    opts.seed = 0xB3;
    opts.lowerToBasis = true;

    decomp::EquivalenceLibrary lib(2);
    opts.equivalenceLibrary = &lib;

    auto t0 = std::chrono::steady_clock::now();
    auto cold = mirage_pass::transpileMany(circuits, grid, opts);
    double cold_ms = millisSince(t0);

    std::printf("\n== Table III with measured sqrt(iSWAP) pulse counts "
                "==\n");
    std::printf("%-20s %10s %10s %10s %8s %10s\n", "name", "est.pulse",
                "meas.pulse", "meas.depth", "fits", "worst-inf");
    for (size_t i = 0; i < cold.size(); ++i) {
        const auto &r = cold[i];
        std::printf("%-20s %10.0f %10.0f %10.0f %8d %10.1e\n",
                    bench::paperBenchmarks()[i].name.c_str(),
                    r.metrics.totalPulses, r.loweredMetrics.totalPulses,
                    r.loweredMetrics.depthPulses,
                    r.translateStats.newFits,
                    r.translateStats.worstInfidelity);
    }

    // Warm pass: same circuits, same shared library -- zero new fits.
    t0 = std::chrono::steady_clock::now();
    auto warm = mirage_pass::transpileMany(circuits, grid, opts);
    double warm_ms = millisSince(t0);
    int warm_fits = 0;
    bool identical = true;
    for (size_t i = 0; i < warm.size(); ++i) {
        warm_fits += warm[i].translateStats.newFits;
        identical = identical &&
                    circuit::Circuit::bitIdentical(cold[i].lowered,
                                                   warm[i].lowered);
    }
    std::printf("\ncold suite (fits included): %9.1f ms  (%llu fits, "
                "%zu cached decompositions)\n",
                cold_ms, (unsigned long long)lib.fitCount(),
                lib.cacheSize());
    std::printf("warm suite (cache hits):    %9.1f ms  (%d new fits; "
                "outputs bit-identical: %s)\n",
                warm_ms, warm_fits, identical ? "yes" : "NO (BUG)");
}

} // namespace

int
main()
{
    std::printf("== Table III: selected circuit benchmarks ==\n");
    std::printf("%-20s %6s %10s %8s %10s  %s\n", "name", "qubits",
                "paper 2Q", "raw 2Q", "cx-equiv", "class");
    for (const auto &b : bench::paperBenchmarks()) {
        auto circ = b.make();
        std::printf("%-20s %6d %10d %8d %10d  %s\n", b.name.c_str(),
                    b.qubits, b.paperTwoQ, circ.twoQubitGateCount(),
                    bench::cxEquivalentCount(circ), b.klass.c_str());
        if (circ.numQubits() != b.qubits)
            std::printf("  !! qubit count mismatch: %d\n",
                        circ.numQubits());
    }
    std::printf("\n(The paper counts QASMBench entries natively and\n"
                "MQTBench entries after CX decomposition; both conventions\n"
                "are printed for comparison.)\n");

    if (benchutil::envInt("MIRAGE_BENCH_TIMING", 1))
        timeSuite();
    if (benchutil::envInt("MIRAGE_BENCH_LOWER", 1))
        lowerSuite();
    return 0;
}
