/**
 * @file
 * Table III reproduction: the benchmark suite inventory. Prints each
 * circuit's qubit count and two-qubit gate counts (native and
 * CX-decomposed) next to the count the paper reports.
 */

#include <cstdio>

#include "bench_circuits/generators.hh"

using namespace mirage;

int
main()
{
    std::printf("== Table III: selected circuit benchmarks ==\n");
    std::printf("%-20s %6s %10s %8s %10s  %s\n", "name", "qubits",
                "paper 2Q", "raw 2Q", "cx-equiv", "class");
    for (const auto &b : bench::paperBenchmarks()) {
        auto circ = b.make();
        std::printf("%-20s %6d %10d %8d %10d  %s\n", b.name.c_str(),
                    b.qubits, b.paperTwoQ, circ.twoQubitGateCount(),
                    bench::cxEquivalentCount(circ), b.klass.c_str());
        if (circ.numQubits() != b.qubits)
            std::printf("  !! qubit count mismatch: %d\n",
                        circ.numQubits());
    }
    std::printf("\n(The paper counts QASMBench entries natively and\n"
                "MQTBench entries after CX decomposition; both conventions\n"
                "are printed for comparison.)\n");
    return 0;
}
