/**
 * @file
 * Figure 6 reproduction: the CPHASE family and its mirror, the
 * parametric-SWAP family, against the sqrt(iSWAP) k=2 coverage region.
 * CPHASE gates sit inside the k=2 region (cost 1.0); their pSWAP mirrors
 * sit outside (k=3, cost 1.5) except at the iSWAP endpoint -- which is
 * why MIRAGE mirrors CPHASE gates only when a SWAP is absorbed.
 */

#include <cstdio>

#include "monodromy/cost_model.hh"
#include "weyl/catalog.hh"

using namespace mirage;
using linalg::kPi;

int
main()
{
    monodromy::CostModel cm = monodromy::makeRootIswapCostModel(2);

    std::printf("== Figure 6: CPHASE -> pSWAP mirrors vs sqrt(iSWAP) k=2 "
                "coverage ==\n");
    std::printf("%8s %26s %8s %6s %26s %8s %6s\n", "phi/pi", "CP coords",
                "cost", "k", "pSWAP coords", "cost", "k");
    for (int i = 1; i <= 8; ++i) {
        double phi = kPi * i / 8.0;
        weyl::Coord cp = weyl::coordCP(phi);
        weyl::Coord ps = weyl::mirrorCoord(cp);
        double cost_cp = cm.costOf(cp);
        double cost_ps = cm.costOf(ps);
        std::printf("%8.3f %26s %8.2f %6d %26s %8.2f %6d\n", phi / kPi,
                    cp.toString().c_str(), cost_cp,
                    int(cost_cp / cm.basisDuration() + 0.5),
                    ps.toString().c_str(), cost_ps,
                    int(cost_ps / cm.basisDuration() + 0.5));
    }
    std::printf("\nCNOT (phi = pi) and its mirror (iSWAP) both cost k=2 "
                "(the paper's 'free' mirror);\nfractional CPHASEs mirror "
                "into k=3 pSWAPs, favored only when absorbing a SWAP.\n");
    return 0;
}
