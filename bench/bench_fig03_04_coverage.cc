/**
 * @file
 * Figures 3 and 4 reproduction: Haar-weighted coverage of the monodromy
 * polytopes for CNOT and the iSWAP roots, with and without mirror
 * extension. The paper's headline values: sqrt(iSWAP) k=2 covers 79.0%
 * (94.4% with mirrors); CNOT k=2 is a zero-volume planar slice; the
 * 4th-root needs k=6 exactly but never more than k=4 with mirrors.
 */

#include <cstdio>

#include "monodromy/coverage.hh"

using namespace mirage;
using monodromy::CoverageSet;

namespace {

void
report(const CoverageSet &cs)
{
    std::printf("--- basis %s (duration %.3f) ---\n",
                cs.basis().name.c_str(), cs.basis().duration);
    std::printf("%4s %18s %18s\n", "k", "coverage", "mirror coverage");
    for (int k = 1; k <= cs.kMax(); ++k) {
        std::printf("%4d %17.2f%% %17.2f%%\n", k,
                    100.0 * cs.haarFractionAt(k),
                    100.0 * cs.mirrorHaarFractionAt(k));
    }
    std::printf("full coverage at k = %d\n\n", cs.kMax());
}

} // namespace

int
main()
{
    std::printf("== Figures 3 & 4: monodromy coverage, standard vs "
                "mirror-extended ==\n\n");
    report(monodromy::coverageForCnot());
    for (int n : {2, 3, 4})
        report(monodromy::coverageForRootIswap(n));

    std::printf("paper anchors: CNOT k=2 -> 0%% (planar);\n");
    std::printf("  sqrt(iSWAP) k=2 -> 79.0%%, with mirrors 94.4%%;\n");
    std::printf("  4th-root needs k=6 exact, <= k=4 with mirrors.\n");
    return 0;
}
