/**
 * @file
 * Figure 13 reproduction: transpiler runtime scaling and the caching
 * ablation. Routes QFT instances of growing size on an 8x8 grid and
 * times (a) the SABRE baseline, (b) MIRAGE with its caches (coordinate
 * cache in consolidation + LRU polytope lookup), and (c) MIRAGE with the
 * caches disabled -- reproducing the Section VI-C observation that the
 * caches keep MIRAGE's runtime competitive with plain SABRE.
 *
 * BM_TrialEngineSerial / BM_TrialEngineParallel time the dominant
 * transpile cost -- the full routeWithTrials grid -- with threads=1
 * versus all hardware threads. Output is bit-identical between the two
 * (counter-based RNG streams); on an N-core machine the parallel run
 * should approach N x. The label reports the thread count used.
 *
 * BM_LoweringCold / BM_LoweringWarm / BM_LoweringWarmStart time the
 * basis-translation stage: a cold equivalence library (every distinct
 * block is a numerical fit), a warm shared library (pure cache hits),
 * and a fresh library warm-started from a saved cache (loadCache +
 * pure hits -- the cross-process caching win).
 *
 * Built on google-benchmark; pass --benchmark_filter=... to narrow runs.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "decomp/equivalence.hh"
#include "mirage/pipeline.hh"
#include "monodromy/cost_model.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

using namespace mirage;

namespace {

const topology::CouplingMap &
grid64()
{
    static const auto g = topology::CouplingMap::grid(8, 8);
    return g;
}

void
routeQft(benchmark::State &state, router::Aggression aggression,
         bool caches,
         router::ScoreMode score_mode = router::ScoreMode::Delta)
{
    const int n = int(state.range(0));
    auto circ = bench::qft(n, true);

    // Coverage construction is one-time; exclude it from the timing.
    monodromy::CostModel cost = monodromy::makeRootIswapCostModel(2);
    cost.setCacheEnabled(caches);

    for (auto _ : state) {
        circuit::ConsolidateOptions copts;
        copts.useCoordinateCache = caches;
        auto consolidated = circuit::consolidateBlocks(circ, copts);
        router::PassOptions opts;
        opts.aggression = aggression;
        opts.costModel = &cost;
        opts.seed = 42;
        opts.scoreMode = score_mode;
        Rng rng(7);
        auto init = layout::Layout::random(64, rng);
        auto res = router::routePass(consolidated, grid64(), init, opts);
        benchmark::DoNotOptimize(res.swapsAdded);
    }
    state.SetLabel(caches ? "cached" : "uncached");
}

void
BM_SabreBaseline(benchmark::State &state)
{
    routeQft(state, router::Aggression::None, true);
}

void
BM_MirageCached(benchmark::State &state)
{
    routeQft(state, router::Aggression::Equal, true);
}

void
BM_MirageUncached(benchmark::State &state)
{
    routeQft(state, router::Aggression::Equal, false);
}

/**
 * Pure routing-pass timing (consolidation hoisted out of the loop,
 * unlike routeQft which deliberately includes it for the cache
 * ablation): ScoreMode::Delta vs the reference full-rescan scorer.
 * The Naive/Delta ratio is the scoring rewrite's speedup; the two
 * produce bit-identical circuits (enforced by test_router_scoring).
 */
void
routeOnly(benchmark::State &state, router::Aggression aggression,
          router::ScoreMode score_mode)
{
    const int n = int(state.range(0));
    monodromy::CostModel cost = monodromy::makeRootIswapCostModel(2);
    auto consolidated = circuit::consolidateBlocks(bench::qft(n, true));

    router::PassOptions opts;
    opts.aggression = aggression;
    opts.costModel = &cost;
    opts.seed = 42;
    opts.scoreMode = score_mode;
    Rng rng(7);
    auto init = layout::Layout::random(64, rng);

    for (auto _ : state) {
        auto res = router::routePass(consolidated, grid64(), init, opts);
        benchmark::DoNotOptimize(res.swapsAdded);
    }
    state.SetLabel(score_mode == router::ScoreMode::Delta ? "delta"
                                                          : "naive");
}

void
BM_SabreDeltaScoring(benchmark::State &state)
{
    routeOnly(state, router::Aggression::None, router::ScoreMode::Delta);
}

void
BM_SabreNaiveScoring(benchmark::State &state)
{
    routeOnly(state, router::Aggression::None, router::ScoreMode::Naive);
}

void
BM_MirageDeltaScoring(benchmark::State &state)
{
    routeOnly(state, router::Aggression::Equal, router::ScoreMode::Delta);
}

void
BM_MirageNaiveScoring(benchmark::State &state)
{
    routeOnly(state, router::Aggression::Equal, router::ScoreMode::Naive);
}

/** The full trial grid (the Fig. 13 workload's dominant cost). */
void
trialEngine(benchmark::State &state, int threads)
{
    const int n = int(state.range(0));
    auto circ = bench::qft(n, true);
    monodromy::CostModel cost = monodromy::makeRootIswapCostModel(2);
    circuit::ConsolidateOptions copts;
    auto consolidated = circuit::consolidateBlocks(circ, copts);
    // Warm the polytope LRU so both variants measure routing, not
    // first-touch coverage queries.
    {
        router::TrialOptions warm;
        warm.layoutTrials = 1;
        warm.swapTrials = 1;
        warm.pass.costModel = &cost;
        router::routeWithTrials(consolidated, grid64(), warm);
    }

    router::TrialOptions opts;
    opts.layoutTrials = 8;
    opts.swapTrials = 4;
    opts.postSelect = router::PostSelect::Depth;
    opts.trialAggression = router::mirageAggressionMix(opts.layoutTrials);
    opts.pass.costModel = &cost;
    opts.seed = 42;
    opts.threads = threads;

    for (auto _ : state) {
        auto res = router::routeWithTrials(consolidated, grid64(), opts);
        benchmark::DoNotOptimize(res.swapsAdded);
    }
    state.SetLabel("threads=" +
                   std::to_string(exec::resolveThreads(threads)));
}

void
BM_TrialEngineSerial(benchmark::State &state)
{
    trialEngine(state, 1);
}

void
BM_TrialEngineParallel(benchmark::State &state)
{
    trialEngine(state, 0); // all hardware threads
}

/** Consolidated QFT(n) blocks, the lowering workload. */
circuit::Circuit
loweringInput(int n)
{
    return circuit::consolidateBlocks(bench::qft(n, true));
}

/** Cold: a fresh library per iteration; every distinct block is a fit. */
void
BM_LoweringCold(benchmark::State &state)
{
    auto circ = loweringInput(int(state.range(0)));
    for (auto _ : state) {
        decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
        auto lowered = lib.translate(circ);
        benchmark::DoNotOptimize(lowered.size());
    }
    state.SetLabel("cold (fits)");
}

/** Warm: one shared library, fitted once outside the timed region. */
void
BM_LoweringWarm(benchmark::State &state)
{
    auto circ = loweringInput(int(state.range(0)));
    decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
    (void)lib.translate(circ);
    for (auto _ : state) {
        auto lowered = lib.translate(circ);
        benchmark::DoNotOptimize(lowered.size());
    }
    state.SetLabel("warm (cache hits)");
}

/**
 * Warm start: a fresh library per iteration loading a saved cache --
 * what a new process pays instead of refitting (loadCache + hits).
 */
void
BM_LoweringWarmStart(benchmark::State &state)
{
    auto circ = loweringInput(int(state.range(0)));
    std::string saved;
    {
        decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
        (void)lib.translate(circ);
        std::ostringstream out;
        lib.saveCache(out);
        saved = out.str();
    }
    for (auto _ : state) {
        decomp::EquivalenceLibrary lib(2, /*preseed=*/false);
        std::istringstream in(saved);
        bool ok = lib.loadCache(in);
        auto lowered = lib.translate(circ);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(lowered.size());
    }
    state.SetLabel("loadCache + hits");
}

} // namespace

BENCHMARK(BM_SabreBaseline)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageCached)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageUncached)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SabreDeltaScoring)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SabreNaiveScoring)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageDeltaScoring)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageNaiveScoring)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrialEngineSerial)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrialEngineParallel)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoweringCold)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoweringWarm)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoweringWarmStart)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
