/**
 * @file
 * Figure 13 reproduction: transpiler runtime scaling and the caching
 * ablation. Routes QFT instances of growing size on an 8x8 grid and
 * times (a) the SABRE baseline, (b) MIRAGE with its caches (coordinate
 * cache in consolidation + LRU polytope lookup), and (c) MIRAGE with the
 * caches disabled -- reproducing the Section VI-C observation that the
 * caches keep MIRAGE's runtime competitive with plain SABRE.
 *
 * Built on google-benchmark; pass --benchmark_filter=... to narrow runs.
 */

#include <benchmark/benchmark.h>

#include "bench_circuits/generators.hh"
#include "circuit/consolidate.hh"
#include "mirage/pipeline.hh"
#include "monodromy/cost_model.hh"
#include "router/sabre.hh"
#include "topology/coupling.hh"

using namespace mirage;

namespace {

const topology::CouplingMap &
grid64()
{
    static const auto g = topology::CouplingMap::grid(8, 8);
    return g;
}

void
routeQft(benchmark::State &state, router::Aggression aggression,
         bool caches)
{
    const int n = int(state.range(0));
    auto circ = bench::qft(n, true);

    // Coverage construction is one-time; exclude it from the timing.
    monodromy::CostModel cost = monodromy::makeRootIswapCostModel(2);
    cost.setCacheEnabled(caches);

    for (auto _ : state) {
        circuit::ConsolidateOptions copts;
        copts.useCoordinateCache = caches;
        auto consolidated = circuit::consolidateBlocks(circ, copts);
        router::PassOptions opts;
        opts.aggression = aggression;
        opts.costModel = &cost;
        opts.seed = 42;
        Rng rng(7);
        auto init = layout::Layout::random(64, rng);
        auto res = router::routePass(consolidated, grid64(), init, opts);
        benchmark::DoNotOptimize(res.swapsAdded);
    }
    state.SetLabel(caches ? "cached" : "uncached");
}

void
BM_SabreBaseline(benchmark::State &state)
{
    routeQft(state, router::Aggression::None, true);
}

void
BM_MirageCached(benchmark::State &state)
{
    routeQft(state, router::Aggression::Equal, true);
}

void
BM_MirageUncached(benchmark::State &state)
{
    routeQft(state, router::Aggression::Equal, false);
}

} // namespace

BENCHMARK(BM_SabreBaseline)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageCached)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MirageUncached)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
