/**
 * @file
 * Domain example: explore a basis gate's computational power. Builds the
 * monodromy coverage sets for a chosen iSWAP fraction, prints coverage
 * per depth with and without mirror gates, Haar scores, and the cost of
 * common gates -- the Section III analysis as a command-line tool.
 *
 *   $ ./examples/basis_explorer [root-degree]
 */

#include <cstdio>
#include <cstdlib>

#include "monodromy/cost_model.hh"
#include "monodromy/scores.hh"
#include "weyl/catalog.hh"

using namespace mirage;
using namespace mirage::monodromy;

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 2;
    if (n < 1 || n > 8) {
        std::fprintf(stderr, "root degree must be in 1..8\n");
        return 1;
    }

    const CoverageSet &cs = coverageForRootIswap(n);
    std::printf("basis: %s (duration %.3f iSWAP units)\n",
                cs.basis().name.c_str(), cs.basis().duration);

    std::printf("\ncoverage of the Weyl chamber (Haar-weighted):\n");
    std::printf("%4s %12s %12s\n", "k", "standard", "mirrored");
    for (int k = 1; k <= cs.kMax(); ++k) {
        std::printf("%4d %11.2f%% %11.2f%%\n", k,
                    100.0 * cs.haarFractionAt(k),
                    100.0 * cs.mirrorHaarFractionAt(k));
    }

    HaarScore plain = haarScoreExact(cs, false);
    HaarScore mirror = haarScoreExact(cs, true);
    std::printf("\nHaar score: %.4f (fidelity %.4f); with mirrors %.4f "
                "(%.4f)\n", plain.score, plain.fidelity, mirror.score,
                mirror.fidelity);

    CostModel cm(cs);
    struct Entry
    {
        const char *name;
        weyl::Coord coords;
    };
    const Entry gates[] = {
        {"CNOT", weyl::coordCNOT()},
        {"iSWAP", weyl::coordISWAP()},
        {"SWAP", weyl::coordSWAP()},
        {"B gate", weyl::coordB()},
        {"CP(pi/2)", weyl::coordCP(1.5707963267948966)},
        {"sqrt(SWAP)", weyl::canonicalize(0.3926990816987241,
                                          0.3926990816987241,
                                          0.3926990816987241)},
    };
    std::printf("\ngate costs (pulses x duration), plus mirror costs:\n");
    std::printf("%-12s %8s %8s %12s\n", "gate", "k", "cost", "mirror cost");
    for (const auto &e : gates) {
        std::printf("%-12s %8d %8.2f %12.2f\n", e.name, cm.kFor(e.coords),
                    cm.costOf(e.coords), cm.mirrorCostOf(e.coords));
    }
    return 0;
}
