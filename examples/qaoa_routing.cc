/**
 * @file
 * Domain example: routing a portfolio-optimization QAOA (complete
 * interaction graph -- the paper's hardest routing workload) onto the
 * 57-qubit heavy-hex lattice, sweeping the mirror aggression level.
 *
 *   $ ./examples/qaoa_routing [qubits] [layers]
 */

#include <cstdio>
#include <cstdlib>

#include "bench_circuits/generators.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;

int
main(int argc, char **argv)
{
    int qubits = argc > 1 ? std::atoi(argv[1]) : 12;
    int layers = argc > 2 ? std::atoi(argv[2]) : 2;

    auto circ = bench::portfolioQaoa(qubits, layers, 5);
    auto device = topology::CouplingMap::heavyHex57();
    std::printf("QAOA: %d qubits, %d layers, %d RZZ gates on %s\n",
                qubits, layers, circ.twoQubitGateCount(),
                device.name().c_str());

    std::printf("\n%-12s %14s %10s %8s %10s\n", "aggression",
                "depth(iSWAP)", "pulses", "swaps", "mirror%");
    for (int aggression = 0; aggression <= 3; ++aggression) {
        mirage_pass::TranspileOptions opts;
        opts.flow = mirage_pass::Flow::MirageDepth;
        opts.fixedAggression = aggression;
        opts.tryVf2 = false;
        auto res = mirage_pass::transpile(circ, device, opts);
        std::printf("%-12d %14.2f %10.1f %8d %9.1f%%\n", aggression,
                    res.metrics.depth, res.metrics.totalPulses,
                    res.swapsAdded, 100.0 * res.mirrorAcceptRate());
    }

    mirage_pass::TranspileOptions mixed;
    mixed.flow = mirage_pass::Flow::MirageDepth;
    mixed.tryVf2 = false;
    auto res = mirage_pass::transpile(circ, device, mixed);
    std::printf("%-12s %14.2f %10.1f %8d %9.1f%%\n", "mixed",
                res.metrics.depth, res.metrics.totalPulses,
                res.swapsAdded, 100.0 * res.mirrorAcceptRate());
    return 0;
}
