/**
 * @file
 * Domain example: bring your own device. Builds a custom coupling map (a
 * ladder with a broken rung), checks VF2 embeddability of a workload,
 * routes it with MIRAGE, verifies the result functionally against the
 * original circuit with the statevector simulator, and exports QASM.
 *
 *   $ ./examples/custom_topology
 */

#include <cstdio>

#include "bench_circuits/generators.hh"
#include "circuit/qasm.hh"
#include "circuit/sim.hh"
#include "layout/vf2.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;

int
main()
{
    // A 2x5 ladder with one rung removed -- e.g. a device with a dead
    // coupler.
    std::vector<std::pair<int, int>> edges;
    for (int c = 0; c + 1 < 5; ++c) {
        edges.emplace_back(c, c + 1);
        edges.emplace_back(5 + c, 5 + c + 1);
    }
    for (int c = 0; c < 5; ++c) {
        if (c != 2) // dead coupler in the middle
            edges.emplace_back(c, 5 + c);
    }
    topology::CouplingMap device(10, edges, "ladder-broken");
    std::printf("device: %s, %d qubits, %zu couplers, max degree %d\n",
                device.name().c_str(), device.numQubits(),
                device.edges().size(), device.maxDegree());

    auto circ = bench::qft(7, true);
    std::printf("workload: %s (%d 2Q gates)\n", circ.name().c_str(),
                circ.twoQubitGateCount());

    auto vf2 = layout::findSwapFreeLayout(circ, device);
    std::printf("swap-free embedding: %s\n",
                vf2.has_value() ? "found" : "none (routing needed)");

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    auto res = mirage_pass::transpile(circ, device, opts);
    std::printf("routed: depth %.2f iSWAP units, %d swaps, %d mirrors\n",
                res.metrics.depth, res.swapsAdded, res.mirrorsAccepted);

    // Functional verification (original vs routed under the reported
    // permutations).
    Rng rng(21);
    circuit::StateVector psi(device.numQubits());
    psi.randomize(rng);
    auto lhs = psi.permuted(res.initial.logicalToPhysical());
    lhs.applyCircuit(res.routed);
    circuit::Circuit lifted(device.numQubits());
    for (const auto &g : circ.gates())
        lifted.append(g);
    auto rhs = psi;
    rhs.applyCircuit(lifted);
    rhs = rhs.permuted(res.final.logicalToPhysical());
    std::printf("functional overlap |<routed|original>| = %.12f\n",
                std::abs(lhs.inner(rhs)));

    std::string qasm = circuit::toQasm(res.routed);
    std::printf("\nQASM export: %zu bytes (first line: %s...)\n",
                qasm.size(), qasm.substr(0, 14).c_str());
    return 0;
}
