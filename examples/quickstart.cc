/**
 * @file
 * Quickstart: build a circuit, transpile it onto a device with MIRAGE,
 * compare against the SABRE baseline, and lower the result to
 * sqrt(iSWAP) pulses via the lowerToBasis pipeline stage (measured
 * pulse depth next to the polytope estimate).
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "bench_circuits/generators.hh"
#include "mirage/pipeline.hh"
#include "topology/coupling.hh"

using namespace mirage;

int
main()
{
    // 1. A circuit: an 8-qubit QFT.
    circuit::Circuit circ = bench::qft(8, true);
    std::printf("input: %s, %d qubits, %d two-qubit gates\n",
                circ.name().c_str(), circ.numQubits(),
                circ.twoQubitGateCount());

    // 2. A device: a 3x3 grid of qubits with sqrt(iSWAP) as basis gate.
    auto device = topology::CouplingMap::grid(3, 3);

    // 3. Transpile with the SABRE baseline and with MIRAGE.
    mirage_pass::TranspileOptions base;
    base.flow = mirage_pass::Flow::SabreBaseline;
    base.tryVf2 = false;
    auto sabre = mirage_pass::transpile(circ, device, base);

    mirage_pass::TranspileOptions opts;
    opts.flow = mirage_pass::Flow::MirageDepth;
    opts.tryVf2 = false;
    opts.lowerToBasis = true; // final stage: emit real sqrt(iSWAP) pulses
    auto mirage = mirage_pass::transpile(circ, device, opts);

    std::printf("\n%-10s %14s %10s %8s %10s\n", "flow", "depth(iSWAP)",
                "pulses", "swaps", "mirrors");
    std::printf("%-10s %14.2f %10.1f %8d %10d\n", "sabre",
                sabre.metrics.depth, sabre.metrics.totalPulses,
                sabre.swapsAdded, sabre.mirrorsAccepted);
    std::printf("%-10s %14.2f %10.1f %8d %10d\n", "mirage",
                mirage.metrics.depth, mirage.metrics.totalPulses,
                mirage.swapsAdded, mirage.mirrorsAccepted);
    std::printf("\ndepth reduction: %.1f%%\n",
                100.0 * (sabre.metrics.depth - mirage.metrics.depth) /
                    sabre.metrics.depth);

    // 4. The lowering stage already ran (lowerToBasis): compare the
    // polytope ESTIMATE against the MEASURED pulse metrics of the
    // emitted circuit.
    const auto &stats = mirage.translateStats;
    std::printf("\nbasis translation: %d blocks -> %.0f sqrt(iSWAP) "
                "pulses, worst infidelity %.2e\n",
                stats.blocksTranslated, stats.totalPulses,
                stats.worstInfidelity);
    std::printf("lowered circuit: %zu gates\n", mirage.lowered.size());
    std::printf("\n%-22s %10s %10s\n", "pulse metric", "estimated",
                "measured");
    std::printf("%-22s %10.1f %10.1f\n", "depth (pulses)",
                mirage.metrics.depthPulses,
                mirage.loweredMetrics.depthPulses);
    std::printf("%-22s %10.1f %10.1f\n", "total pulses",
                mirage.metrics.totalPulses,
                mirage.loweredMetrics.totalPulses);
    return 0;
}
